//! The HE-VI acoustic (short) time step, §IV-A.3 of the paper.
//!
//! Horizontally explicit: the horizontal momenta advance with a forward
//! step of the linearized pressure gradient. Vertically implicit: the
//! coupled w / continuity / thermodynamic system is off-centered by β and
//! eliminated into a tridiagonal ("1-D Helmholtz-like") equation for the
//! new w momentum in each column, solved by the Thomas algorithm —
//! sequential in z, parallel over the (x, y) plane, exactly the
//! computational structure of the paper's Helmholtz kernel (Fig. 2b).
//!
//! Formulation (full-variable form, linearized around the latest RK3
//! stage): with the stage reference `Θ_ref` and its EOS pressure
//! `p_ref`, the acoustic pressure is `p = p_ref + c2m (Θ − Θ_ref)` where
//! `c2m = c̄s²/(θ̄ G)`. One substep of length Δτ does
//!
//! ```text
//! U⁺ = U + Δτ (−G_u ∂x p + F_U)                (explicit, likewise V)
//! W⁺ : tridiagonal solve per column           (implicit, see below)
//! ρ*⁺ = ρ*‡ − Δτβ ∂ζ(W⁺)/G
//! Θ⁺  = Θ‡  − Δτβ ∂ζ(θ̄_w W⁺)/G
//! ```
//!
//! where `ρ*‡`, `Θ‡` hold the explicit parts (slow forcing, horizontal
//! divergence of the updated momenta, and the (1−β) share of the old
//! vertical flux). Buoyancy uses the discretely balanced reference `rbw`
//! so a resting base state is bit-for-bit steady.

use crate::config::ModelConfig;
use crate::grid::{BaseFields, Grid};
use crate::state::{State, Tendencies};
use numerics::tridiag::ColumnSolver;
use numerics::Field3;
use physics::consts::GRAV;
use physics::eos;

/// Per-stage linearization context: reference Θ and its EOS pressure.
#[derive(Debug, Clone)]
pub struct StageRef {
    pub th_ref: Field3<f64>,
    pub p_ref: Field3<f64>,
}

impl StageRef {
    pub fn capture(grid: &Grid, stage: &State) -> Self {
        let mut p_ref = grid.center_field();
        compute_eos_pressure(grid, &stage.th, &mut p_ref);
        StageRef {
            th_ref: stage.th.clone(),
            p_ref,
        }
    }
}

/// Diagnose the full nonlinear EOS pressure `p = P(Θ/G)` over the padded
/// box (the paper's "Update pressure (EOS)" kernel of Fig. 1).
pub fn compute_eos_pressure(grid: &Grid, th: &Field3<f64>, p: &mut Field3<f64>) {
    let h = th.halo() as isize;
    let (nx, ny, nz) = (th.nx() as isize, th.ny() as isize, th.nz() as isize);
    for j in -h..ny + h {
        for i in -h..nx + h {
            let inv_g = 1.0 / grid.g.at(i.clamp(-2, nx + 1), j.clamp(-2, ny + 1));
            for k in -h..nz + h {
                p.set(
                    i,
                    j,
                    k,
                    eos::pressure_from_rho_theta(th.at(i, j, k) * inv_g),
                );
            }
        }
    }
}

/// Refresh the linearized pressure `p = p_ref + c2m (Θ − Θ_ref)` over the
/// padded box (halos of Θ must be current).
pub fn update_linear_pressure(
    _grid: &Grid,
    base: &BaseFields,
    sref: &StageRef,
    th: &Field3<f64>,
    p: &mut Field3<f64>,
) {
    let h = th.halo() as isize;
    let (nx, ny, nz) = (th.nx() as isize, th.ny() as isize, th.nz() as isize);
    for j in -h..ny + h {
        for i in -h..nx + h {
            for k in -h..nz + h {
                let kk = k.clamp(0, nz - 1);
                let v = sref.p_ref.at(i, j, k)
                    + base.c2m.at(i, j, kk) * (th.at(i, j, k) - sref.th_ref.at(i, j, k));
                p.set(i, j, k, v);
            }
        }
    }
}

/// Explicit update of the horizontal momenta:
/// `U += Δτ (−G_u (p[i+1]−p[i])/dx + F_U)` and the V analogue.
/// Updates the interior only; callers must exchange U/V halos before the
/// implicit solve (this is the paper's short-step "Momentum (x/y)"
/// communication, Fig. 9).
pub fn update_horizontal_momentum(
    grid: &Grid,
    f: &Tendencies,
    p: &Field3<f64>,
    dtau: f64,
    u: &mut Field3<f64>,
    v: &mut Field3<f64>,
) {
    let (nx, ny, nz) = (grid.nx as isize, grid.ny as isize, grid.nz as isize);
    let inv_dx = 1.0 / grid.dx;
    let inv_dy = 1.0 / grid.dy;
    for j in 0..ny {
        for i in 0..nx {
            let gu = grid.g_u.at(i, j);
            let gv = grid.g_v.at(i, j);
            for k in 0..nz {
                let dpdx = (p.at(i + 1, j, k) - p.at(i, j, k)) * inv_dx;
                u.add_at(i, j, k, dtau * (-gu * dpdx + f.fu.at(i, j, k)));
                let dpdy = (p.at(i, j + 1, k) - p.at(i, j, k)) * inv_dy;
                v.add_at(i, j, k, dtau * (-gv * dpdy + f.fv.at(i, j, k)));
            }
        }
    }
}

/// Column scratch for the implicit solve.
pub struct ColumnScratch {
    solver: ColumnSolver<f64>,
    rho_st: Vec<f64>,
    th_st: Vec<f64>,
    p_st: Vec<f64>,
}

impl ColumnScratch {
    pub fn new(nz: usize) -> Self {
        ColumnScratch {
            solver: ColumnSolver::new(nz.max(2) - 1),
            rho_st: vec![0.0; nz],
            th_st: vec![0.0; nz],
            p_st: vec![0.0; nz],
        }
    }
}

/// The vertically implicit part of one acoustic substep: builds and
/// solves the tridiagonal system for W in every column and back-
/// substitutes ρ*, Θ and the linearized pressure.
///
/// Requires up-to-date halos of `u`/`v` (for the horizontal divergence)
/// and current `p`. Updates `rho`, `th`, `w`, `p` in the interior.
#[allow(clippy::too_many_arguments)]
pub fn implicit_vertical(
    cfg: &ModelConfig,
    grid: &Grid,
    base: &BaseFields,
    sref: &StageRef,
    f: &Tendencies,
    dtau: f64,
    s: &mut State,
    scratch: &mut ColumnScratch,
) {
    let (nx, ny) = (grid.nx as isize, grid.ny as isize);
    let nz = grid.nz;
    let beta = cfg.beta;
    let inv_dx = 1.0 / grid.dx;
    let inv_dy = 1.0 / grid.dy;
    let dz = grid.dzeta;

    for j in 0..ny {
        for i in 0..nx {
            let gm = grid.g.at(i, j);
            let inv_gdz = 1.0 / (gm * dz);

            // Surface kinematic boundary: W(0) = ρ* (u ∂x zs + v ∂y zs),
            // with the *updated* horizontal momenta; zero on flat ground.
            let w_surf = if grid.flat {
                0.0
            } else {
                let rho0 = s.rho.at(i, j, 0);
                let uspec = 0.5 * (s.u.at(i - 1, j, 0) + s.u.at(i, j, 0)) / rho0;
                let vspec = 0.5 * (s.v.at(i, j - 1, 0) + s.v.at(i, j, 0)) / rho0;
                let slopex = 0.5 * (grid.dzsdx_u.at(i - 1, j) + grid.dzsdx_u.at(i, j));
                let slopey = 0.5 * (grid.dzsdy_v.at(i, j - 1) + grid.dzsdy_v.at(i, j));
                rho0 * (uspec * slopex + vspec * slopey)
            };

            // Explicit ("star") parts of ρ*, Θ and p at every center.
            for kc in 0..nz {
                let k = kc as isize;
                let dh_rho = (s.u.at(i, j, k) - s.u.at(i - 1, j, k)) * inv_dx
                    + (s.v.at(i, j, k) - s.v.at(i, j - 1, k)) * inv_dy;
                let thu_p = 0.5 * (base.th_c.at(i, j, k) + base.th_c.at(i + 1, j, k));
                let thu_m = 0.5 * (base.th_c.at(i - 1, j, k) + base.th_c.at(i, j, k));
                let thv_p = 0.5 * (base.th_c.at(i, j, k) + base.th_c.at(i, j + 1, k));
                let thv_m = 0.5 * (base.th_c.at(i, j - 1, k) + base.th_c.at(i, j, k));
                let dh_th = (thu_p * s.u.at(i, j, k) - thu_m * s.u.at(i - 1, j, k)) * inv_dx
                    + (thv_p * s.v.at(i, j, k) - thv_m * s.v.at(i, j - 1, k)) * inv_dy;
                let dwz_old = (s.w.at(i, j, k + 1) - s.w.at(i, j, k)) * inv_gdz;
                let dthwz_old = (base.th_w.at(i, j, k + 1) * s.w.at(i, j, k + 1)
                    - base.th_w.at(i, j, k) * s.w.at(i, j, k))
                    * inv_gdz;
                scratch.rho_st[kc] = s.rho.at(i, j, k)
                    + dtau * (f.frho.at(i, j, k) - dh_rho - (1.0 - beta) * dwz_old);
                scratch.th_st[kc] = s.th.at(i, j, k)
                    + dtau * (f.fth.at(i, j, k) - dh_th - (1.0 - beta) * dthwz_old);
                scratch.p_st[kc] = sref.p_ref.at(i, j, k)
                    + base.c2m.at(i, j, k) * (scratch.th_st[kc] - sref.th_ref.at(i, j, k));
            }

            // Tridiagonal coefficients for interior w levels 1..nz-1.
            let tb2 = (dtau * beta) * (dtau * beta);
            for kw in 1..nz {
                let r = kw - 1; // row index in the solver
                let k = kw as isize;
                let c2m_lo = base.c2m.at(i, j, k - 1);
                let c2m_hi = base.c2m.at(i, j, k);
                let thw_m = base.th_w.at(i, j, k - 1);
                let thw_0 = base.th_w.at(i, j, k);
                let thw_p = base.th_w.at(i, j, k + 1);
                scratch.solver.a[r] = -tb2 / gm * (c2m_lo * thw_m / (dz * dz) - GRAV / (2.0 * dz));
                scratch.solver.b[r] = 1.0 + tb2 / (gm * dz * dz) * thw_0 * (c2m_hi + c2m_lo);
                scratch.solver.c[r] = -tb2 / gm * (c2m_hi * thw_p / (dz * dz) + GRAV / (2.0 * dz));

                let p_old_grad = (s.p.at(i, j, k) - s.p.at(i, j, k - 1)) / dz;
                let buoy_old = GRAV
                    * (0.5 * (s.rho.at(i, j, k - 1) + s.rho.at(i, j, k)) - base.rbw.at(i, j, k));
                let p_st_grad = (scratch.p_st[kw] - scratch.p_st[kw - 1]) / dz;
                let buoy_st = GRAV
                    * (0.5 * (scratch.rho_st[kw - 1] + scratch.rho_st[kw]) - base.rbw.at(i, j, k));
                scratch.solver.d[r] = s.w.at(i, j, k) + dtau * f.fw.at(i, j, k)
                    - dtau * (1.0 - beta) * (p_old_grad + buoy_old)
                    - dtau * beta * (p_st_grad + buoy_st);
            }
            // Fold in the known boundary values W(0) = w_surf, W(nz) = 0.
            if nz >= 2 {
                let a0 = scratch.solver.a[0];
                scratch.solver.d[0] -= a0 * w_surf;
                scratch.solver.a[0] = 0.0;
                let last = nz - 2;
                scratch.solver.c[last] = 0.0;
            }
            scratch.solver.solve();

            // Store W and back-substitute ρ*, Θ, p.
            s.w.set(i, j, 0, w_surf);
            s.w.set(i, j, nz as isize, 0.0);
            for kw in 1..nz {
                s.w.set(i, j, kw as isize, scratch.solver.d[kw - 1]);
            }
            for kc in 0..nz {
                let k = kc as isize;
                let w_lo = s.w.at(i, j, k);
                let w_hi = s.w.at(i, j, k + 1);
                let rho_new = scratch.rho_st[kc] - dtau * beta * (w_hi - w_lo) * inv_gdz;
                let th_new = scratch.th_st[kc]
                    - dtau
                        * beta
                        * (base.th_w.at(i, j, k + 1) * w_hi - base.th_w.at(i, j, k) * w_lo)
                        * inv_gdz;
                s.rho.set(i, j, k, rho_new);
                s.th.set(i, j, k, th_new);
                let p_new = sref.p_ref.at(i, j, k)
                    + base.c2m.at(i, j, k) * (th_new - sref.th_ref.at(i, j, k));
                s.p.set(i, j, k, p_new);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Terrain;
    use crate::state::Tendencies;
    use physics::base::BaseState;

    fn setup(terrain: Terrain, nx: usize, ny: usize, nz: usize) -> (ModelConfig, Grid, BaseFields) {
        let mut c = ModelConfig::mountain_wave(nx, ny, nz);
        c.terrain = terrain;
        c.k_diffusion = 0.0;
        let g = Grid::build(&c);
        let b = BaseFields::build(&g, &BaseState::constant_n(288.0, 0.01));
        (c, g, b)
    }

    fn rest_state(grid: &Grid, base: &BaseFields) -> State {
        let mut s = State::zeros(grid, 3);
        for j in -2..grid.ny as isize + 2 {
            for i in -2..grid.nx as isize + 2 {
                let gm = grid.g.at(i, j);
                for k in -2..grid.nz as isize + 2 {
                    let kk = k.clamp(0, grid.nz as isize - 1);
                    let rho = base.rho_c.at(i, j, kk) * gm;
                    s.rho.set(i, j, k, rho);
                    s.th.set(i, j, k, rho * base.th_c.at(i, j, kk));
                }
            }
        }
        compute_eos_pressure(grid, &s.th, &mut s.p);
        s
    }

    #[test]
    fn resting_base_state_is_steady_over_substeps() {
        // Flat terrain: the acoustic operators alone must hold the base
        // state bit-steady (over terrain the fast ∂x p|ζ force is
        // balanced by the *slow* metric term, tested at model level).
        let (cfg, grid, base) = setup(Terrain::Flat, 8, 6, 12);
        let mut s = rest_state(&grid, &base);
        let sref = StageRef::capture(&grid, &s);
        let f = Tendencies::zeros(&grid, 3);
        let mut scratch = ColumnScratch::new(grid.nz);
        let w_before = s.w.max_abs();
        for _ in 0..4 {
            update_horizontal_momentum(&grid, &f, &s.p, 0.8, &mut s.u, &mut s.v);
            s.u.fill_halo_periodic_xy();
            s.v.fill_halo_periodic_xy();
            implicit_vertical(&cfg, &grid, &base, &sref, &f, 0.8, &mut s, &mut scratch);
            s.th.fill_halo_periodic_xy();
            s.th.fill_halo_zero_gradient_z();
            update_linear_pressure(&grid, &base, &sref, &s.th, &mut s.p);
        }
        assert!(s.u.max_abs() < 1e-10, "u grew: {}", s.u.max_abs());
        assert!(s.w.max_abs() - w_before < 1e-9, "w grew: {}", s.w.max_abs());
    }

    #[test]
    fn terrain_fast_pg_is_balanced_by_metric_term() {
        // Over terrain, the fast −G ∂x p|ζ acceleration of the base state
        // must be (almost exactly) cancelled by the slow metric term
        // (∂z/∂x)|ζ ∂ζ p — together they form the true ∂x p|z = 0.
        let (_cfg, grid, base) = setup(
            Terrain::AgnesiRidge {
                height: 400.0,
                half_width: 8000.0,
            },
            16,
            4,
            12,
        );
        let s = rest_state(&grid, &base);
        let mut f = Tendencies::zeros(&grid, 3);
        crate::tendency::metric_pressure_gradient(&grid, &s.p, &mut f);
        let dtau = 1.0;
        let mut u = s.u.clone();
        let mut v = s.v.clone();
        update_horizontal_momentum(&grid, &f, &s.p, dtau, &mut u, &mut v);
        // Residual acceleration must be far below the un-balanced fast
        // term alone.
        let mut fast_only = s.u.clone();
        let mut v2 = s.v.clone();
        let zero_f = Tendencies::zeros(&grid, 3);
        update_horizontal_momentum(&grid, &zero_f, &s.p, dtau, &mut fast_only, &mut v2);
        let resid = u.max_abs();
        let raw = fast_only.max_abs();
        assert!(raw > 0.0, "terrain must produce a fast PG signal");
        assert!(
            resid < 0.15 * raw,
            "metric term fails to balance: residual {resid} vs raw {raw}"
        );
    }

    #[test]
    fn pressure_pulse_spreads_and_conserves_mass() {
        let (cfg, grid, base) = setup(Terrain::Flat, 16, 4, 10);
        let mut s = rest_state(&grid, &base);
        // Add a θ (hence pressure) perturbation in the middle.
        let k_mid = 5;
        for di in -1..=1isize {
            let i = 8 + di;
            let v = s.th.at(i, 2, k_mid) * 1.002;
            s.th.set(i, 2, k_mid, v);
        }
        s.fill_halos_periodic();
        compute_eos_pressure(&grid, &s.th, &mut s.p);
        let sref = StageRef::capture(&grid, &s);
        let f = Tendencies::zeros(&grid, 3);
        let mut scratch = ColumnScratch::new(grid.nz);
        let mass0 = s.rho.sum_interior();
        let dtau = 0.5;
        for _ in 0..6 {
            update_horizontal_momentum(&grid, &f, &s.p, dtau, &mut s.u, &mut s.v);
            s.u.fill_halo_periodic_xy();
            s.v.fill_halo_periodic_xy();
            implicit_vertical(&cfg, &grid, &base, &sref, &f, dtau, &mut s, &mut scratch);
            s.th.fill_halo_periodic_xy();
            s.th.fill_halo_zero_gradient_z();
            update_linear_pressure(&grid, &base, &sref, &s.th, &mut s.p);
        }
        // The pulse must radiate: u becomes nonzero away from the source.
        assert!(s.u.max_abs() > 1e-6, "no acoustic response");
        // Mass conservation to round-off (periodic, rigid lid).
        let mass1 = s.rho.sum_interior();
        assert!(
            ((mass1 - mass0) / mass0).abs() < 1e-12,
            "mass drift {:e}",
            (mass1 - mass0) / mass0
        );
        // Nothing blows up.
        assert_eq!(s.find_non_finite(), None);
        assert!(s.w.max_abs() < 10.0);
    }

    #[test]
    fn acoustic_signal_speed_is_sound_speed() {
        // 1-D horizontal propagation: after n substeps the front must
        // have travelled ≈ cs * t. Use a long thin domain.
        let (cfg, grid, base) = setup(Terrain::Flat, 64, 4, 6);
        let mut s = rest_state(&grid, &base);
        let kc = 3;
        for j in 0..4isize {
            let v = s.th.at(32, j, kc) * 1.001;
            s.th.set(32, j, kc, v);
        }
        s.fill_halos_periodic();
        compute_eos_pressure(&grid, &s.th, &mut s.p);
        let sref = StageRef::capture(&grid, &s);
        let f = Tendencies::zeros(&grid, 3);
        let mut scratch = ColumnScratch::new(grid.nz);
        let dtau = 2.0; // cs*dtau = 680 m < dx/sqrt2? dx=2000 so fine
        let nsteps = 20;
        for _ in 0..nsteps {
            update_horizontal_momentum(&grid, &f, &s.p, dtau, &mut s.u, &mut s.v);
            s.u.fill_halo_periodic_xy();
            s.v.fill_halo_periodic_xy();
            implicit_vertical(&cfg, &grid, &base, &sref, &f, dtau, &mut s, &mut scratch);
            s.th.fill_halo_periodic_xy();
            s.th.fill_halo_zero_gradient_z();
            update_linear_pressure(&grid, &base, &sref, &s.th, &mut s.p);
        }
        // Expected travel distance in cells.
        let cs = (base.c2m.at(32, 1, kc) * base.th_c.at(32, 1, kc)).sqrt();
        let cells = cs * dtau * nsteps as f64 / grid.dx;
        // Find the front: outermost cell where |u| exceeds 1% of max.
        let umax = s.u.max_abs();
        let mut front = 0isize;
        for i in 33..64isize {
            if s.u.at(i, 1, kc).abs() > 0.01 * umax {
                front = i - 32;
            }
        }
        assert!(
            (front as f64 - cells).abs() <= 3.0,
            "front at {front} cells, expected ~{cells:.1}"
        );
    }

    #[test]
    fn implicit_solve_is_stable_for_large_vertical_courant() {
        // The whole point of HE-VI: vertical sound CFL >> 1 must stay
        // bounded. dζ = z_top/nz = 15000/30 = 500 m; cs·Δτ = 340*3 ≈ 1 km
        // => vertical Courant ≈ 2, while the horizontal Courant stays
        // below the explicit limit (cs·Δτ/dx ≈ 0.5).
        let (cfg, grid, base) = setup(Terrain::Flat, 6, 4, 30);
        let mut s = rest_state(&grid, &base);
        let v0 = s.th.at(3, 2, 15) * 1.001;
        s.th.set(3, 2, 15, v0);
        s.fill_halos_periodic();
        compute_eos_pressure(&grid, &s.th, &mut s.p);
        let sref = StageRef::capture(&grid, &s);
        let f = Tendencies::zeros(&grid, 3);
        let mut scratch = ColumnScratch::new(grid.nz);
        for _ in 0..40 {
            update_horizontal_momentum(&grid, &f, &s.p, 3.0, &mut s.u, &mut s.v);
            s.u.fill_halo_periodic_xy();
            s.v.fill_halo_periodic_xy();
            implicit_vertical(&cfg, &grid, &base, &sref, &f, 3.0, &mut s, &mut scratch);
            s.th.fill_halo_periodic_xy();
            s.th.fill_halo_zero_gradient_z();
            update_linear_pressure(&grid, &base, &sref, &s.th, &mut s.p);
        }
        assert_eq!(s.find_non_finite(), None);
        assert!(s.w.max_abs() < 5.0, "w = {}", s.w.max_abs());
    }

    #[test]
    fn eos_pressure_matches_physics_crate() {
        let (_cfg, grid, base) = setup(Terrain::Flat, 4, 4, 6);
        let s = rest_state(&grid, &base);
        let expect = eos::pressure_from_rho_theta(s.th.at(1, 1, 2));
        assert!((s.p.at(1, 1, 2) - expect).abs() / expect < 1e-14);
    }
}
