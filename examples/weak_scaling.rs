//! Multi-GPU weak scaling in miniature: run the same subdomain on
//! growing (simulated) GPU counts and watch the sustained TFlops and
//! the effect of the overlap optimizations — a desk-sized Fig. 10.
//!
//! ```text
//! cargo run --release --example weak_scaling
//! ```

use asuca_gpu::multi::{run_multi, MultiGpuConfig, OverlapMode};
use cluster::NetworkSpec;
use dycore::config::ModelConfig;
use vgpu::{DeviceSpec, ExecMode};

fn main() {
    // Per-GPU subdomain: the paper's 320x256x48 in single precision.
    let cfg = {
        let mut c = ModelConfig::mountain_wave(320, 256, 48);
        c.dt = 5.0;
        c
    };

    println!("weak scaling, 320x256x48 per GPU, single precision, simulated TSUBAME 1.2");
    println!(
        "{:>5} {:>7} {:>16} {:>18} {:>10}",
        "gpus", "grid", "overlap TFlops", "no-overlap TFlops", "gain"
    );
    for (px, py) in [(1, 2), (2, 2), (2, 3), (3, 4), (4, 5), (6, 8)] {
        let mut t = [0.0f64; 2];
        for (i, overlap) in [OverlapMode::Overlap, OverlapMode::None]
            .into_iter()
            .enumerate()
        {
            let mc = MultiGpuConfig {
                local_cfg: cfg.clone(),
                px,
                py,
                overlap,
                spec: DeviceSpec::tesla_s1070(),
                net: NetworkSpec::tsubame1_infiniband(),
                mode: ExecMode::Phantom,
                steps: 1,
                detailed_profile: false,
            };
            t[i] = run_multi::<f32>(&mc, &|_, _, _, _| {})
                .expect("run failed")
                .tflops;
        }
        println!(
            "{:>5} {:>7} {:>16.2} {:>18.2} {:>9.1}%",
            px * py,
            format!("{px}x{py}"),
            t[0],
            t[1],
            (t[0] / t[1] - 1.0) * 100.0
        );
    }
    println!("\n(the full Table I sweep to 528 GPUs: cargo run --release -p asuca-bench --bin fig10_weak_scaling)");
}
