//! The Fig. 12 surrogate: a synthetic tropical-cyclone-like vortex with
//! warm rain (substituting for the paper's proprietary JMA MANAL data —
//! see DESIGN.md), run on the full model with Coriolis and microphysics.
//!
//! ```text
//! cargo run --release --example tropical_vortex [steps]
//! ```

use dycore::config::{ModelConfig, Terrain};
use dycore::{diag, init, Model};

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);

    let mut cfg = ModelConfig::mountain_wave(48, 48, 12);
    cfg.terrain = Terrain::Flat; // over sea
    cfg.dx = 4000.0;
    cfg.dy = 4000.0;
    cfg.dt = 8.0;
    cfg.coriolis_f = physics::consts::F_CORIOLIS_35N;
    let mut m = Model::new(cfg);
    init::tropical_vortex(&mut m, 25.0, 8.0, 0.95);

    println!("tropical vortex: 48x48x12 at 4 km, Vmax = 25 m/s, RH 95% core, f-plane 35N");
    for n in 1..=steps {
        let stats = m.step();
        if n % 10 == 0 || n == steps {
            println!(
                "t = {:>6.0} s: max wind {:.1} m/s, max|w| {:.2} m/s, cloud {:.2e}, precip {:.2e}",
                stats.time,
                stats.max_u,
                stats.max_w,
                m.state.q[1].max_abs(),
                stats.total_precip
            );
        }
        assert!(
            m.state.find_non_finite().is_none(),
            "non-finite at step {n}"
        );
    }

    let wind = diag::wind_speed_slice(&m.grid, &m.state, 1);
    let (lo, hi) = wind.min_max();
    println!("\nnear-surface wind speed [{lo:.1}..{hi:.1} m/s]:");
    print!("{}", wind.ascii(48, 24));
    let p = diag::pressure_slice(&m.grid, &m.state, 0);
    let (plo, phi) = p.min_max();
    println!("surface pressure [{plo:.0}..{phi:.0} Pa] (low at the warm core):");
    print!("{}", p.ascii(48, 24));
}
