//! The paper's §IV-B benchmark scenario: flow over an ideal mountain.
//!
//! "An ideal mountain is placed at the center of the calculation
//! domain. As an initial condition, 10.0 m/s wind blows in the x
//! direction and normal pressure, temperature, density ... are given.
//! The time integration step is 5.0 sec." (Periodic boundaries, as in
//! the paper's test.)
//!
//! Runs the CPU reference model and renders the developing gravity-wave
//! pattern as an (x, z) cross-section of vertical velocity.
//!
//! ```text
//! cargo run --release --example mountain_wave [steps]
//! ```

use dycore::config::ModelConfig;
use dycore::{diag, init, Model};

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    let mut cfg = ModelConfig::mountain_wave(96, 8, 24);
    cfg.dt = 5.0;
    let mut m = Model::new(cfg);
    init::mountain_wave_inflow(&mut m, 10.0);

    println!("mountain wave: 96x8x24, dx = 2 km, 400 m Agnesi ridge, U = 10 m/s, dt = 5 s");
    for n in 1..=steps {
        let stats = m.step();
        if n % 10 == 0 || n == steps {
            println!(
                "t = {:>5.0} s: max|w| = {:.3} m/s, max|u| = {:.2} m/s",
                stats.time, stats.max_w, stats.max_u
            );
        }
        assert!(
            m.state.find_non_finite().is_none(),
            "model went non-finite at step {n}"
        );
    }

    // Vertical-velocity cross-section along the ridge centre line:
    // the classic tilted gravity-wave pattern above and downstream of
    // the mountain.
    let w = diag::w_cross_section(&m.grid, &m.state, 4);
    let (lo, hi) = w.min_max();
    println!("\nvertical velocity (x,z) cross-section [{lo:.3}..{hi:.3} m/s], ground at bottom:");
    // Flip vertically so the ground is at the bottom of the rendering.
    let art = w.ascii(96, 24);
    for line in art.lines().rev() {
        println!("{line}");
    }
    println!("\nmountain profile (zs/8, cells):");
    let mut ridge = String::new();
    for i in 0..96isize {
        let h = (m.grid.zs.at(i, 4) / 50.0) as usize;
        ridge.push(if h > 4 {
            '^'
        } else if h > 1 {
            '-'
        } else {
            '_'
        });
    }
    println!("{ridge}");
}
