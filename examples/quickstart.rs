//! Quickstart: run the ASUCA-like model on the GPU port end-to-end.
//!
//! Builds a small mountain-wave case, runs it on the CPU reference and
//! on the (simulated) GPU in double precision, verifies agreement to
//! round-off — the paper's §I correctness claim — and prints the
//! simulated performance numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use asuca_gpu::SingleGpu;
use dycore::config::ModelConfig;
use dycore::{init, Model};
use vgpu::{DeviceSpec, ExecMode};

fn main() {
    // A small version of the paper's mountain-wave benchmark (§IV-B):
    // bell-shaped ridge, 10 m/s inflow, warm-rain microphysics on.
    let mut cfg = ModelConfig::mountain_wave(48, 16, 16);
    cfg.dt = 4.0;
    println!(
        "grid {}x{}x{}, dt = {} s, limiter = {:?}",
        cfg.nx, cfg.ny, cfg.nz, cfg.dt, cfg.limiter
    );

    // CPU reference (the "original Fortran code" stand-in).
    let mut cpu = Model::new(cfg.clone());
    init::mountain_wave_inflow(&mut cpu, 10.0);

    // Full GPU port, fed the identical initial state.
    let mut gpu =
        SingleGpu::<f64>::new(cfg.clone(), DeviceSpec::tesla_s1070(), ExecMode::Functional);
    gpu.load_state(&cpu.state).unwrap();

    let steps = 5;
    for n in 1..=steps {
        let stats = cpu.step();
        gpu.step().unwrap();
        println!(
            "step {n}: t = {:>5.0} s  max|u| = {:.2} m/s  max|w| = {:.3} m/s  mass = {:.6e}",
            stats.time, stats.max_u, stats.max_w, stats.total_mass
        );
    }

    // Download the GPU result and compare.
    let mut gpu_state = dycore::State::zeros(&gpu.grid, cfg.n_tracers);
    gpu.save_state(&mut gpu_state);
    let diff_u = cpu.state.u.max_diff(&gpu_state.u);
    let diff_th = cpu.state.th.max_diff(&gpu_state.th);
    println!("\nGPU vs CPU after {steps} steps: max|Δu| = {diff_u:.3e}, max|ΔΘ| = {diff_th:.3e}");
    assert!(
        diff_u < 1e-8 && diff_th < 1e-6,
        "GPU port diverged from the CPU reference"
    );
    println!("agreement within machine round-off — the paper's correctness criterion holds.");

    // Simulated performance on the Tesla S1070 model.
    let (flops, ksecs) = gpu.dev.profiler.flops_and_time();
    println!(
        "\nsimulated GPU: {:.2e} flops in {:.1} ms of kernel time -> {:.1} GFlops (double precision)",
        flops,
        ksecs * 1e3,
        flops / ksecs / 1e9
    );
    println!("(run the crates/bench harnesses to reproduce the paper's figures)");
}
